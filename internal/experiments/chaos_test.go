package experiments

import (
	"testing"
)

// TestChaosInvariants: under a crash mid-load, no foreground op may fail, no
// data may be lost, and the dedup invariants must hold afterwards.
func TestChaosInvariants(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke test")
	}
	for _, r := range Chaos(tinyScale) {
		if r.ForegroundErrors != 0 {
			t.Errorf("%s: %d foreground op failures, want 0", r.Scenario, r.ForegroundErrors)
		}
		if r.VerifyErrors != 0 {
			t.Errorf("%s: %d objects failed verification, want 0", r.Scenario, r.VerifyErrors)
		}
		if r.ScrubIssues != 0 {
			t.Errorf("%s: %d scrub issues, want 0", r.Scenario, r.ScrubIssues)
		}
		if r.GCStaleRefs != 0 {
			t.Errorf("%s: %d stale refs after GC, want 0", r.Scenario, r.GCStaleRefs)
		}
		if r.DetectLatency <= 0 {
			t.Errorf("%s: detection latency %v, want > 0 (crash must not be detected instantly)", r.Scenario, r.DetectLatency)
		}
		if len(r.Timeline) == 0 {
			t.Errorf("%s: empty availability timeline", r.Scenario)
		}
	}
}

// TestChaosDeterministic: the whole experiment — fault firing, detection,
// degraded ops, recovery, final metrics — replays bit-for-bit from a seed.
func TestChaosDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke test")
	}
	a, b := Chaos(tinyScale), Chaos(tinyScale)
	if len(a) != len(b) {
		t.Fatalf("run lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		fa, fb := a[i].Fingerprint(), b[i].Fingerprint()
		if fa != fb {
			t.Errorf("scenario %s diverged between identical runs:\n--- run 1 ---\n%s--- run 2 ---\n%s",
				a[i].Scenario, fa, fb)
		}
	}
}
