package experiments

import (
	"fmt"

	"dedupstore/internal/core"
	"dedupstore/internal/rados"
	"dedupstore/internal/sim"
	"dedupstore/internal/workload"
)

// Fig3Row is one bar pair of Figure 3: local vs global dedup ratio for a
// workload on the 16-OSD testbed.
type Fig3Row struct {
	Workload    string
	Local       float64
	Global      float64
	PaperLocal  float64
	PaperGlobal float64
}

// Fig3 reproduces Figure 3: "Deduplication ratio comparison between global
// deduplication and local deduplication" across FIO, SPEC SFS DB, and the
// private-cloud dataset, on 4 nodes × 4 OSDs.
func Fig3(sc Scale) []Fig3Row {
	var rows []Fig3Row

	fio := func(name string, pct float64, paperLocal, paperGlobal float64) {
		h := sc.newHarness(101, 4, 4)
		span := sc.bytes(5 << 20) // paper: 5GB
		dev := h.rawDevice("fio", span, 64<<10, rados.ReplicatedN(2))
		h.run(func(p *sim.Proc) {
			res := workload.RunFIO(p, dev, workload.FIOConfig{
				BlockSize: 8 << 10, Span: span, Pattern: workload.SeqWrite,
				DedupPct: pct, Threads: 4, IODepth: 4, Seed: 11,
			})
			if res.Errors > 0 {
				panic(fmt.Sprintf("fig3 %s: %d errors", name, res.Errors))
			}
		})
		pool, _ := h.c.LookupPool("pool.fio")
		local := core.LocalDedupAnalysis(h.c, pool, 8<<10)
		global := core.GlobalDedupAnalysis(h.c, pool, 8<<10)
		rows = append(rows, Fig3Row{name, local.Ratio(), global.Ratio(), paperLocal, paperGlobal})
	}
	fio("FIO dedup 50%", 50, 4.20, 50.01)
	fio("FIO dedup 80%", 80, 12.98, 80.01)

	sfs := func(loads int, paperLocal, paperGlobal float64) {
		h := sc.newHarness(102, 4, 4)
		perLoad := sc.bytes(2400 << 10) // paper: 24GB total at metric 10
		dev := h.rawDevice("sfs", int64(loads)*perLoad, 64<<10, rados.ReplicatedN(2))
		cfg := workload.SFSConfig{Loads: loads, BytesPerLoad: perLoad, PageSize: 8 << 10, Seed: 21}
		h.run(func(p *sim.Proc) {
			if err := workload.BuildSFSDataset(p, dev, cfg); err != nil {
				panic(err)
			}
		})
		pool, _ := h.c.LookupPool("pool.sfs")
		local := core.LocalDedupAnalysis(h.c, pool, 8<<10)
		global := core.GlobalDedupAnalysis(h.c, pool, 8<<10)
		rows = append(rows, Fig3Row{fmt.Sprintf("SFS DB (LD%d)", loads), local.Ratio(), global.Ratio(), paperLocal, paperGlobal})
	}
	sfs(1, 8.96, 35.96)
	sfs(3, 32.53, 80.60)
	sfs(10, 50.02, 92.73)

	// Private cloud.
	{
		h := sc.newHarness(103, 4, 4)
		pool, gw := h.rawPool("cloud", rados.ReplicatedN(2))
		gen := workload.NewCloudGen(workload.CloudConfig{
			Objects: sc.countMin(12, 6), ObjectSize: 2 << 20, Seed: 31,
		})
		h.run(func(p *sim.Proc) {
			for i := 0; i < gen.Config().Objects; i++ {
				if err := gw.WriteFull(p, pool, gen.ObjectName(i), gen.ObjectContent(i)); err != nil {
					panic(err)
				}
			}
		})
		local := core.LocalDedupAnalysis(h.c, pool, 32<<10)
		global := core.GlobalDedupAnalysis(h.c, pool, 32<<10)
		rows = append(rows, Fig3Row{"SKT Private Cloud", local.Ratio(), global.Ratio(), 21.53, 44.80})
	}
	return rows
}

// Fig3Table renders Fig3 results.
func Fig3Table(rows []Fig3Row) Table {
	t := Table{
		Title:   "Figure 3: local vs global deduplication ratio (%)",
		Columns: []string{"workload", "local", "global", "paper-local", "paper-global"},
		Notes: []string{
			"shape target: global >> local everywhere; gap ~2-4x for SFS/cloud, ~12x for FIO on 16 OSDs",
		},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{r.Workload, f1(r.Local), f1(r.Global), f1(r.PaperLocal), f1(r.PaperGlobal)})
	}
	return t
}

// Table1Row is one column of Table 1: local vs global ratio as the cluster
// grows.
type Table1Row struct {
	OSDs        int
	Local       float64
	Global      float64
	PaperLocal  float64
	PaperGlobal float64
}

// Table1 reproduces Table 1: FIO dedup-50% content analyzed under local and
// global dedup at 4, 8, 12, 16 OSDs — local dedup's ratio collapses as the
// cluster scales out, global stays at the content's 50%.
func Table1(sc Scale) []Table1Row {
	paperLocal := map[int]float64{4: 15.5, 8: 8.1, 12: 5.5, 16: 4.1}
	var rows []Table1Row
	for _, osds := range []int{4, 8, 12, 16} {
		h := sc.newHarness(111, 4, osds/4)
		span := sc.bytes(5 << 20)
		dev := h.rawDevice("fio", span, 64<<10, rados.ReplicatedN(2))
		h.run(func(p *sim.Proc) {
			res := workload.RunFIO(p, dev, workload.FIOConfig{
				BlockSize: 8 << 10, Span: span, Pattern: workload.SeqWrite,
				DedupPct: 50, Threads: 4, IODepth: 4, Seed: 41,
			})
			if res.Errors > 0 {
				panic("table1: write errors")
			}
		})
		pool, _ := h.c.LookupPool("pool.fio")
		local := core.LocalDedupAnalysis(h.c, pool, 8<<10)
		global := core.GlobalDedupAnalysis(h.c, pool, 8<<10)
		rows = append(rows, Table1Row{osds, local.Ratio(), global.Ratio(), paperLocal[osds], 50.0})
	}
	return rows
}

// Table1Table renders Table1 results.
func Table1Table(rows []Table1Row) Table {
	t := Table{
		Title:   "Table 1: dedup ratio (%) vs cluster size, FIO dedup=50%",
		Columns: []string{"OSDs", "local", "global", "paper-local", "paper-global"},
		Notes:   []string{"shape target: local ratio shrinks ~1/OSDs; global stays ~50%"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{fmt.Sprint(r.OSDs), f1(r.Local), f1(r.Global), f1(r.PaperLocal), f1(r.PaperGlobal)})
	}
	return t
}

// Fig3Result runs Fig3 and packages it as a machine-readable Result.
func Fig3Result(sc Scale) Result {
	return Result{Name: "fig3", Tables: []Table{Fig3Table(Fig3(sc))}}
}

// Table1Result runs Table1 and packages it as a machine-readable Result.
func Table1Result(sc Scale) Result {
	return Result{Name: "table1", Tables: []Table{Table1Table(Table1(sc))}}
}
