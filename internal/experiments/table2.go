package experiments

import (
	"fmt"

	"dedupstore/internal/chunker"
	"dedupstore/internal/core"
	"dedupstore/internal/rados"
	"dedupstore/internal/sim"
	"dedupstore/internal/workload"
)

// Table2Row is one column of Table 2: the chunk-size trade-off on the
// private-cloud dataset.
type Table2Row struct {
	ChunkSize      int64
	IdealRatio     float64 // dedup ratio of the data alone
	StoredData     int64   // post-dedup data bytes
	StoredMetadata int64   // chunk maps, references, per-object overheads
	ActualRatio    float64 // ratio including metadata cost
	PaperIdeal     float64
	PaperActual    float64
}

// Table2 reproduces Table 2: "Deduplication ratio comparison based on chunk
// size of 16KB, 32KB, and 64KB" on the private-cloud dataset. Small chunks
// find more duplicate data but pay proportionally more metadata (150B map
// entries, 64B references, 512B per-object overheads — §5), so the actual
// ratio inverts the ideal ordering.
func Table2(sc Scale) []Table2Row {
	paper := map[int64][2]float64{
		16 << 10: {46.4, 41.7},
		32 << 10: {44.8, 42.4},
		64 << 10: {43.7, 43.3},
	}
	gen := workload.NewCloudGen(workload.CloudConfig{
		Objects: sc.countMin(16, 8), ObjectSize: 2 << 20, Seed: 501,
	})
	contents := make([][]byte, gen.Config().Objects)
	var logical int64
	for i := range contents {
		contents[i] = gen.ObjectContent(i)
		logical += int64(len(contents[i]))
	}

	var rows []Table2Row
	for _, cs := range []int64{16 << 10, 32 << 10, 64 << 10} {
		// Ideal ratio: content analysis only.
		chk := chunker.NewFixed(cs)
		seen := map[string]bool{}
		var total, unique int64
		for _, data := range contents {
			for _, c := range chk.Split(0, data) {
				total += int64(len(c.Data))
				id := core.FingerprintID(c.Data)
				if !seen[id] {
					seen[id] = true
					unique += int64(len(c.Data))
				}
			}
		}
		ideal := 100 * float64(total-unique) / float64(total)

		// Actual: store through the dedup design. Replication factor 1 on
		// both pools, matching the paper's accounting ("calculated under
		// excluding the redundancy caused by replication").
		h := sc.newHarness(502, 4, 4)
		s := h.dedupStore(func(cfg *core.Config) {
			cfg.ChunkSize = cs
			cfg.MetaRedundancy = rados.ReplicatedN(1)
			cfg.ChunkRedundancy = rados.ReplicatedN(1)
			cfg.Rate.Enabled = false
			cfg.HitSet.HitCount = 1000
			cfg.DedupThreads = 8
		})
		cl := s.Client("loader")
		h.run(func(p *sim.Proc) {
			for i, data := range contents {
				if err := cl.Write(p, gen.ObjectName(i), 0, data); err != nil {
					panic(err)
				}
			}
			s.Engine().DrainAndWait(p)
		})
		meta := h.c.PoolStats(s.MetaPool())
		chunk := h.c.PoolStats(s.ChunkPool())
		storedData := meta.StoredPhysical + chunk.StoredPhysical
		storedMeta := meta.StoredMetadata + chunk.StoredMetadata
		actual := 100 * (1 - float64(storedData+storedMeta)/float64(logical))
		rows = append(rows, Table2Row{
			ChunkSize: cs, IdealRatio: ideal,
			StoredData: storedData, StoredMetadata: storedMeta, ActualRatio: actual,
			PaperIdeal: paper[cs][0], PaperActual: paper[cs][1],
		})
	}
	return rows
}

// Table2Table renders Table2.
func Table2Table(rows []Table2Row) Table {
	t := Table{
		Title:   "Table 2: dedup ratio vs chunk size (private-cloud dataset, replication excluded)",
		Columns: []string{"chunk", "ideal %", "stored data", "stored metadata", "actual %", "paper-ideal %", "paper-actual %"},
		Notes: []string{
			"shape target: ideal ratio falls as chunks grow; metadata halves per doubling; actual ratio crossover favors larger chunks",
			"paper stored: 1.82/1.88/1.89 TB data and 163/82/41 GB metadata on the 3.3TB dataset",
		},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			fmtKB(r.ChunkSize), f1(r.IdealRatio), mb(r.StoredData), mb(r.StoredMetadata),
			f1(r.ActualRatio), f1(r.PaperIdeal), f1(r.PaperActual),
		})
	}
	return t
}

var _ = fmt.Sprintf // keep fmt for future note formatting

// Table2Result runs Table2 and packages it as a machine-readable Result.
func Table2Result(sc Scale) Result {
	return Result{Name: "table2", Tables: []Table{Table2Table(Table2(sc))}}
}
