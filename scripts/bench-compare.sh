#!/bin/sh
# bench-compare.sh — benchmark wall-clock regression gate.
#
# Compares the total_seconds of a PR timing summary (results/BENCH_pr.json,
# written by `make bench-json`) against the checked-in baseline
# (results/BENCH_baseline.json):
#
#   regression  > 25%  -> ::error annotation, exit 1 (gate fails)
#   regression 10-25%  -> ::warning annotation, exit 0 (warn only)
#   otherwise          -> ok, exit 0 (improvements always pass)
#
# Usage:
#   sh scripts/bench-compare.sh <baseline.json> <pr.json>
#   sh scripts/bench-compare.sh --selftest
#
# The JSON is the canonical TimingSummary written by internal/harness
# (fixed field order, 2-space indent), so the total is extracted with awk
# and the script has no dependencies beyond POSIX sh + awk.

set -eu

FAIL_PCT=25
WARN_PCT=10

total_seconds() {
    awk -F': *' '/"total_seconds"/ { gsub(/[,[:space:]]/, "", $2); print $2; exit }' "$1"
}

# compare <baseline.json> <pr.json>: prints the verdict, returns 1 on a
# failing regression.
compare() {
    base_file=$1 pr_file=$2
    for f in "$base_file" "$pr_file"; do
        if [ ! -f "$f" ]; then
            echo "::error::bench-compare: missing timing summary $f"
            return 1
        fi
    done
    base=$(total_seconds "$base_file")
    pr=$(total_seconds "$pr_file")
    if [ -z "$base" ] || [ -z "$pr" ]; then
        echo "::error::bench-compare: no total_seconds in $base_file or $pr_file"
        return 1
    fi
    # pct is the regression relative to baseline; negative = faster.
    verdict=$(awk -v base="$base" -v pr="$pr" -v fail="$FAIL_PCT" -v warn="$WARN_PCT" 'BEGIN {
        if (base <= 0) { print "error"; exit }
        pct = 100 * (pr - base) / base
        printf "%.1f ", pct
        if (pct > fail)       print "fail"
        else if (pct >= warn) print "warn"
        else                  print "ok"
    }')
    if [ "$verdict" = "error" ]; then
        echo "::error::bench-compare: baseline total_seconds is $base"
        return 1
    fi
    pct=${verdict% *}
    kind=${verdict#* }
    case $kind in
    fail)
        echo "::error::bench sweep regressed ${pct}% (baseline ${base}s -> PR ${pr}s, limit ${FAIL_PCT}%)"
        return 1
        ;;
    warn)
        echo "::warning::bench sweep regressed ${pct}% (baseline ${base}s -> PR ${pr}s, fails above ${FAIL_PCT}%)"
        ;;
    *)
        echo "bench-compare ok: baseline ${base}s -> PR ${pr}s (${pct}%)"
        ;;
    esac
    return 0
}

# mkstub <file> <total_seconds>: writes a minimal TimingSummary.
mkstub() {
    cat >"$1" <<EOF
{
  "workers": 4,
  "total_seconds": $2,
  "sum_seconds": $2,
  "speedup": 1.0,
  "experiments": []
}
EOF
}

# selftest: drives the gate with synthetic totals and checks every branch,
# so the 25% threshold is itself under test in CI.
selftest() {
    dir=$(mktemp -d)
    trap 'rm -rf "$dir"' EXIT
    mkstub "$dir/base.json" 100.0
    fails=0

    mkstub "$dir/pr.json" 105.0
    if ! compare "$dir/base.json" "$dir/pr.json" >/dev/null; then
        echo "selftest FAIL: 5% regression must pass"
        fails=$((fails + 1))
    fi

    mkstub "$dir/pr.json" 115.0
    out=$(compare "$dir/base.json" "$dir/pr.json") || {
        echo "selftest FAIL: 15% regression must warn, not fail"
        fails=$((fails + 1))
    }
    case $out in
    *::warning::*) ;;
    *)
        echo "selftest FAIL: 15% regression must emit a ::warning:: annotation, got: $out"
        fails=$((fails + 1))
        ;;
    esac

    mkstub "$dir/pr.json" 130.0
    if compare "$dir/base.json" "$dir/pr.json" >/dev/null; then
        echo "selftest FAIL: 30% regression must fail the gate"
        fails=$((fails + 1))
    fi

    mkstub "$dir/pr.json" 60.0
    if ! compare "$dir/base.json" "$dir/pr.json" >/dev/null; then
        echo "selftest FAIL: an improvement must pass"
        fails=$((fails + 1))
    fi

    if compare "$dir/missing.json" "$dir/pr.json" >/dev/null 2>&1; then
        echo "selftest FAIL: missing baseline must fail"
        fails=$((fails + 1))
    fi

    if [ "$fails" -ne 0 ]; then
        echo "bench-compare selftest: $fails failure(s)"
        exit 1
    fi
    echo "bench-compare selftest ok"
}

case ${1-} in
--selftest)
    selftest
    ;;
"")
    echo "usage: $0 <baseline.json> <pr.json> | --selftest" >&2
    exit 2
    ;;
*)
    compare "$1" "${2?usage: $0 <baseline.json> <pr.json>}"
    ;;
esac
