#!/bin/sh
# Fails if any internal/ package has Go sources but no _test.go file.
set -eu
cd "$(dirname "$0")/.."
missing=0
for dir in $(find internal -type f -name '*.go' ! -name '*_test.go' | xargs -n1 dirname | sort -u); do
	if ! ls "$dir"/*_test.go >/dev/null 2>&1; then
		echo "check-tests: $dir has no _test.go" >&2
		missing=1
	fi
done
exit $missing
