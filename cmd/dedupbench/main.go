// Command dedupbench regenerates every table and figure of the paper's
// evaluation on the simulated testbed and prints paper-vs-measured tables.
//
// Usage:
//
//	dedupbench [flags] [experiment ...]
//
// Experiments: fig3 table1 fig5a fig5b fig10 fig11 table2 fig12 table3
// fig13 fig14 chaos ablation (or "all", the default).
//
// The sweep runs across a bounded worker pool (-workers, default
// GOMAXPROCS; every experiment owns an isolated deterministic sim, so
// stdout is byte-identical to a sequential -workers 1 run). Tables go to
// stdout; per-experiment wall-clock lines and the final timing table go to
// stderr so machine-diffed output stays deterministic.
//
// Each experiment also writes a canonical JSON result to results/<name>.json
// (-results, empty to disable). -golden write|check snapshots those results
// under testdata/golden and fails with a per-cell diff on drift. -trace
// prints the N slowest op spans after each experiment (bare -trace = 10).
// -cpuprofile/-memprofile write pprof profiles of the sweep; -metrics dumps
// the harness's wall-clock metrics registry. Flags may appear after
// experiment names (`dedupbench fig10 -trace`).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"time"

	"dedupstore/internal/experiments"
	"dedupstore/internal/harness"
	"dedupstore/internal/metrics"
)

func main() { os.Exit(run()) }

func run() int {
	scale := flag.Float64("scale", 1.0, "dataset scale factor (1.0 = default scaled sizes; <1 faster)")
	list := flag.Bool("list", false, "list experiments and exit")
	trace := flag.Int("trace", 0, "print the N slowest trace spans after each experiment (bare -trace = 10)")
	workers := flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS; 1 = sequential)")
	golden := flag.String("golden", "", "golden snapshot mode: 'write' to (re)generate, 'check' to diff and fail on drift")
	goldenDir := flag.String("goldendir", "testdata/golden", "directory holding golden snapshots")
	results := flag.String("results", "results", "directory for canonical JSON results (empty = don't write)")
	timing := flag.String("timing", "", "write a JSON wall-clock summary to this path")
	dumpMetrics := flag.Bool("metrics", false, "dump the harness metrics registry to stderr after the sweep")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile of the sweep to this path")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile taken after the sweep to this path")
	flag.CommandLine.Parse(reorderArgs(os.Args[1:]))

	valid := experiments.Names()
	if *list {
		fmt.Println(strings.Join(valid, " "))
		return 0
	}
	if *golden != "" && *golden != "write" && *golden != "check" {
		fmt.Fprintf(os.Stderr, "dedupbench: -golden must be 'write' or 'check', got %q\n", *golden)
		return 2
	}

	names := flag.Args()
	if len(names) == 0 || (len(names) == 1 && names[0] == "all") {
		names = valid
	}
	var exps []experiments.Experiment
	for _, name := range names {
		exp, ok := experiments.Lookup(name)
		if !ok {
			fmt.Fprintf(os.Stderr, "dedupbench: unknown experiment %q\nvalid experiments: %s (or \"all\")\n",
				name, strings.Join(valid, " "))
			return 2
		}
		exps = append(exps, exp)
	}
	sort.SliceStable(exps, func(i, j int) bool {
		return indexOf(valid, exps[i].Name()) < indexOf(valid, exps[j].Name())
	})

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dedupbench: %v\n", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "dedupbench: %v\n", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}

	reg := metrics.NewRegistry()
	opts := harness.Options{
		Workers: *workers,
		Scale:   experiments.Scale{Data: *scale},
		TraceN:  *trace,
		Metrics: reg,
	}
	effWorkers := opts.Workers
	if effWorkers <= 0 {
		effWorkers = runtime.GOMAXPROCS(0)
	}

	start := time.Now()
	reports := harness.Run(exps, opts, func(rep harness.Report) {
		if rep.Err != nil {
			fmt.Fprintf(os.Stderr, "dedupbench: %v\n", rep.Err)
			return
		}
		fmt.Print(rep.Output)
		if rep.Trace != "" {
			fmt.Print(rep.Trace)
		}
		fmt.Fprintf(os.Stderr, "[%s completed in %s wall time]\n", rep.Name, rep.Wall.Round(time.Millisecond))
	})
	total := time.Since(start)

	failed := 0
	for _, rep := range reports {
		if rep.Err != nil {
			failed++
		}
	}
	fmt.Fprint(os.Stderr, harness.TimingTable(reports, effWorkers, total))

	if *results != "" {
		if err := harness.WriteResults(*results, reports); err != nil {
			fmt.Fprintf(os.Stderr, "dedupbench: writing results: %v\n", err)
			return 1
		}
	}
	if *timing != "" {
		if err := harness.WriteTimingJSON(*timing, harness.Summarize(reports, effWorkers, total)); err != nil {
			fmt.Fprintf(os.Stderr, "dedupbench: writing timing summary: %v\n", err)
			return 1
		}
	}
	if *dumpMetrics {
		fmt.Fprint(os.Stderr, reg.Dump())
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dedupbench: %v\n", err)
			return 1
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "dedupbench: %v\n", err)
			return 1
		}
	}

	if failed > 0 {
		fmt.Fprintf(os.Stderr, "dedupbench: %d experiment(s) failed\n", failed)
		return 1
	}

	switch *golden {
	case "write":
		var ok []experiments.Result
		for _, rep := range reports {
			ok = append(ok, rep.Result)
		}
		if err := harness.WriteGolden(*goldenDir, ok); err != nil {
			fmt.Fprintf(os.Stderr, "dedupbench: writing golden snapshots: %v\n", err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "wrote %d golden snapshot(s) to %s\n", len(ok), *goldenDir)
	case "check":
		var got []experiments.Result
		for _, rep := range reports {
			got = append(got, rep.Result)
		}
		diffs, err := harness.CheckGolden(*goldenDir, got)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dedupbench: golden check: %v\n", err)
			return 1
		}
		if len(diffs) > 0 {
			fmt.Fprintf(os.Stderr, "golden check FAILED: %d difference(s) vs %s\n", len(diffs), *goldenDir)
			for _, d := range diffs {
				fmt.Fprintf(os.Stderr, "  %s\n", d)
			}
			fmt.Fprintln(os.Stderr, "if the shift is intentional, regenerate with: dedupbench -scale <same> -golden write <experiments>")
			return 1
		}
		fmt.Fprintf(os.Stderr, "golden check ok: %d experiment(s) match %s\n", len(got), *goldenDir)
	}
	return 0
}

// reorderArgs lets flags appear after experiment names (Go's flag package
// stops at the first positional) and gives bare -trace its default of 10.
// An explicit count is accepted as -trace=N or as a bare integer following
// -trace.
func reorderArgs(args []string) []string {
	var flags, pos []string
	for i := 0; i < len(args); i++ {
		a := args[i]
		if !strings.HasPrefix(a, "-") || a == "-" {
			pos = append(pos, a)
			continue
		}
		if a == "--" {
			pos = append(pos, args[i+1:]...)
			break
		}
		name := strings.TrimLeft(a, "-")
		if !strings.Contains(name, "=") {
			switch name {
			case "trace":
				a = "-trace=10"
				if i+1 < len(args) {
					if _, err := strconv.Atoi(args[i+1]); err == nil {
						i++
						a = "-trace=" + args[i]
					}
				}
			case "list", "metrics", "h", "help":
				// boolean flags take no value
			default:
				// value-taking flag (-scale 0.5): keep the pair together
				if i+1 < len(args) {
					flags = append(flags, a)
					i++
					a = args[i]
				}
			}
		}
		flags = append(flags, a)
	}
	return append(flags, pos...)
}

func indexOf(order []string, name string) int {
	for i, n := range order {
		if n == name {
			return i
		}
	}
	return len(order)
}
