// Command dedupbench regenerates every table and figure of the paper's
// evaluation on the simulated testbed and prints paper-vs-measured tables.
//
// Usage:
//
//	dedupbench [-scale f] [-trace[=N]] [experiment ...]
//
// Experiments: fig3 table1 fig5a fig5b fig10 fig11 table2 fig12 table3
// fig13 fig14 ablation (or "all", the default). -trace prints the N slowest
// op spans after each experiment (default 10) with queue-wait vs. service
// breakdowns per resource; flags may appear after experiment names
// (`dedupbench fig10 -trace`).
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"dedupstore/internal/experiments"
)

func main() {
	scale := flag.Float64("scale", 1.0, "dataset scale factor (1.0 = default scaled sizes; <1 faster)")
	list := flag.Bool("list", false, "list experiments and exit")
	trace := flag.Int("trace", 0, "print the N slowest trace spans after each experiment (bare -trace = 10)")
	flag.CommandLine.Parse(reorderArgs(os.Args[1:]))

	sc := experiments.Scale{Data: *scale}

	runners := map[string]func(experiments.Scale) []experiments.Table{
		"fig3": func(sc experiments.Scale) []experiments.Table {
			return []experiments.Table{experiments.Fig3Table(experiments.Fig3(sc))}
		},
		"table1": func(sc experiments.Scale) []experiments.Table {
			return []experiments.Table{experiments.Table1Table(experiments.Table1(sc))}
		},
		"fig5a": func(sc experiments.Scale) []experiments.Table {
			return []experiments.Table{experiments.Fig5aTable(experiments.Fig5a(sc))}
		},
		"fig5b": func(sc experiments.Scale) []experiments.Table {
			return []experiments.Table{experiments.Fig5bTable(experiments.Fig5b(sc))}
		},
		"fig10": func(sc experiments.Scale) []experiments.Table {
			return []experiments.Table{experiments.Fig10Table(experiments.Fig10(sc))}
		},
		"fig11": func(sc experiments.Scale) []experiments.Table {
			return []experiments.Table{experiments.Fig11Table(experiments.Fig11(sc))}
		},
		"table2": func(sc experiments.Scale) []experiments.Table {
			return []experiments.Table{experiments.Table2Table(experiments.Table2(sc))}
		},
		"fig12": func(sc experiments.Scale) []experiments.Table {
			return []experiments.Table{experiments.Fig12Table(experiments.Fig12(sc))}
		},
		"table3": func(sc experiments.Scale) []experiments.Table {
			return []experiments.Table{experiments.Table3Table(experiments.Table3(sc))}
		},
		"fig13": func(sc experiments.Scale) []experiments.Table {
			return []experiments.Table{experiments.Fig13Table(experiments.Fig13(sc))}
		},
		"fig14": func(sc experiments.Scale) []experiments.Table {
			return []experiments.Table{experiments.Fig14Table(experiments.Fig14(sc))}
		},
		"chaos": func(sc experiments.Scale) []experiments.Table {
			return experiments.ChaosTables(experiments.Chaos(sc))
		},
		"ablation": func(sc experiments.Scale) []experiments.Table {
			return []experiments.Table{
				experiments.AblationChunkingTable(experiments.AblationChunking(sc)),
				experiments.AblationCDCStoreTable(experiments.AblationCDCStore(sc)),
				experiments.AblationBackupTable(experiments.AblationBackup(sc)),
				experiments.AblationRefcountTable(experiments.AblationRefcount(sc)),
				experiments.AblationCacheTable(experiments.AblationCache(sc)),
			}
		},
	}
	order := []string{"fig3", "table1", "fig5a", "fig5b", "fig10", "fig11", "table2", "fig12", "table3", "fig13", "fig14", "chaos", "ablation"}

	if *list {
		fmt.Println(strings.Join(order, " "))
		return
	}

	names := flag.Args()
	if len(names) == 0 || (len(names) == 1 && names[0] == "all") {
		names = order
	}
	sort.SliceStable(names, func(i, j int) bool { return indexOf(order, names[i]) < indexOf(order, names[j]) })

	for _, name := range names {
		runner, ok := runners[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "dedupbench: unknown experiment %q (use -list)\n", name)
			os.Exit(2)
		}
		start := time.Now()
		for _, tab := range runner(sc) {
			fmt.Print(tab)
		}
		if *trace > 0 {
			if rep := experiments.TraceReport(*trace); rep != "" {
				fmt.Print(rep)
			}
		} else {
			experiments.TraceReport(0) // reset the per-experiment sink list
		}
		fmt.Printf("[%s completed in %s wall time]\n\n", name, time.Since(start).Round(time.Millisecond))
	}
}

// reorderArgs lets flags appear after experiment names (Go's flag package
// stops at the first positional) and gives bare -trace its default of 10.
// An explicit count is accepted as -trace=N or as a bare integer following
// -trace.
func reorderArgs(args []string) []string {
	var flags, pos []string
	for i := 0; i < len(args); i++ {
		a := args[i]
		if !strings.HasPrefix(a, "-") || a == "-" {
			pos = append(pos, a)
			continue
		}
		if a == "--" {
			pos = append(pos, args[i+1:]...)
			break
		}
		name := strings.TrimLeft(a, "-")
		if !strings.Contains(name, "=") {
			switch name {
			case "trace":
				a = "-trace=10"
				if i+1 < len(args) {
					if _, err := strconv.Atoi(args[i+1]); err == nil {
						i++
						a = "-trace=" + args[i]
					}
				}
			case "list", "h", "help":
				// boolean flags take no value
			default:
				// value-taking flag (-scale 0.5): keep the pair together
				if i+1 < len(args) {
					flags = append(flags, a)
					i++
					a = args[i]
				}
			}
		}
		flags = append(flags, a)
	}
	return append(flags, pos...)
}

func indexOf(order []string, name string) int {
	for i, n := range order {
		if n == name {
			return i
		}
	}
	return len(order)
}
