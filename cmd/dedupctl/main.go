// Command dedupctl is an inspection and administration tool for the
// simulated dedup store: it builds a cluster, loads a dataset (synthetic or
// from a block trace), and then runs admin actions — df, status, deep
// scrub, bit-rot injection + repair, GC, cold eviction — printing what a
// storage operator would see.
//
// Usage:
//
//	dedupctl [flags] <action>...
//
// Actions: status df metrics qos sim index tiering tenants scrub corrupt repair gc audit evict verify chaos
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"dedupstore"
	"dedupstore/internal/chaos"
	"dedupstore/internal/chunker"
	"dedupstore/internal/fpindex"
	"dedupstore/internal/gateway"
	"dedupstore/internal/store"
	"dedupstore/internal/workload"
)

type ctl struct {
	world *dedupstore.World
	store *dedupstore.Store
	dev   *dedupstore.BlockDevice
}

func main() {
	var (
		seed     = flag.Int64("seed", 1, "simulation seed")
		size     = flag.Int64("size", 16<<20, "device size in bytes")
		dedupPct = flag.Float64("dedup", 50, "synthetic content dedup percentage")
		chunkKB  = flag.Int64("chunk", 32, "chunk size in KiB")
		useCDC   = flag.Bool("cdc", false, "use content-defined chunking")
		fpRefs   = flag.Bool("fp-refs", false, "false-positive refcount mode (requires gc)")
		traceIn  = flag.String("trace", "", "replay this block trace instead of synthetic fill")
		noisySLO = flag.String("slo", "bronze", "SLO for the tenants action's noisy tenant: gold|silver|bronze|unthrottled or weight=N,rate=SIZE,burst=SIZE,inflight=N")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: dedupctl [flags] <action>...\nactions: status df metrics qos sim index tiering tenants scrub corrupt repair gc audit evict verify chaos\nflags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	actions := flag.Args()
	if len(actions) == 0 {
		actions = []string{"status", "df"}
	}

	c := &ctl{world: dedupstore.NewWorld(*seed)}
	cfg := dedupstore.DefaultConfig()
	cfg.ChunkSize = *chunkKB << 10
	cfg.Rate.Enabled = false
	cfg.HitSet.HitCount = 1000
	cfg.DedupThreads = 8
	cfg.FalsePositiveRefs = *fpRefs
	// The index and tiering actions need their subsystems up before the
	// store opens its pools, so pre-scan the action list.
	for _, a := range actions {
		if a == "index" {
			cfg.FPIndex = fpindex.DefaultConfig()
			cfg.FPIndex.Enabled = true
			// Demo-sized memtable so SSTables and compaction show up even on
			// the default few-MB dataset.
			cfg.FPIndex.MemtableBytes = 2 << 10
		}
		if a == "tiering" {
			cfg.Tiering = dedupstore.DefaultTiering()
		}
	}
	if *useCDC {
		cdc := chunker.NewCDC(cfg.ChunkSize/4, cfg.ChunkSize, cfg.ChunkSize*4)
		cfg.CDC = &cdc
	}
	s, err := dedupstore.OpenStore(c.world.Cluster, cfg)
	if err != nil {
		log.Fatal(err)
	}
	c.store = s
	c.dev, err = dedupstore.NewBlockDevice("vol", *size, 1<<20, s.Client("ctl"))
	if err != nil {
		log.Fatal(err)
	}

	c.load(*traceIn, *size, *dedupPct)

	for _, action := range actions {
		fmt.Printf("--- %s ---\n", action)
		switch action {
		case "status":
			c.status()
		case "df":
			c.df()
		case "metrics":
			c.metrics()
		case "qos":
			c.qos()
		case "sim":
			c.simStats()
		case "index":
			c.index()
		case "tiering":
			c.tiering()
		case "tenants":
			c.tenants(*noisySLO)
		case "scrub":
			c.scrub(false)
		case "repair":
			c.scrub(true)
		case "corrupt":
			c.corrupt()
		case "gc":
			c.gc()
		case "audit":
			c.audit()
		case "evict":
			c.evict()
		case "verify":
			c.verify()
		case "chaos":
			c.chaos(*seed)
		default:
			log.Fatalf("dedupctl: unknown action %q", action)
		}
	}
}

// load fills the store and deduplicates it.
func (c *ctl) load(tracePath string, size int64, dedupPct float64) {
	c.world.Run(func(p *dedupstore.Proc) {
		if tracePath != "" {
			f, err := os.Open(tracePath)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			ops, err := workload.ParseTrace(f)
			if err != nil {
				log.Fatal(err)
			}
			res := workload.ReplayTrace(p, c.dev, ops, 0, 16)
			fmt.Printf("replayed %d trace ops (%d errors) in %v virtual\n",
				res.Reads.Lat.Count()+res.Writes.Lat.Count(), res.Errors, res.Elapsed)
		} else {
			res := workload.RunFIO(p, c.dev, workload.FIOConfig{
				BlockSize: 64 << 10, Span: size, Pattern: workload.SeqWrite,
				DedupPct: dedupPct, Threads: 8, IODepth: 4, Seed: 3,
			})
			if res.Errors > 0 {
				log.Fatalf("load: %d errors", res.Errors)
			}
			fmt.Printf("loaded %.1f MB synthetic data (dedup %.0f%%) at %.0f MB/s virtual\n",
				float64(size)/1e6, dedupPct, res.Throughput())
		}
		c.store.Engine().DrainAndWait(p)
	})
}

func (c *ctl) status() {
	cl := c.world.Cluster
	fmt.Printf("cluster: %d hosts, %d OSDs, epoch %d\n", cl.HostCount(), len(cl.OSDs()), cl.Map().Epoch)
	st := c.store.Engine().Stats()
	fmt.Printf("engine: %d objects scanned, %d chunks flushed (%.1f MB), %d duplicate hits, %d requeues\n",
		st.ObjectsScanned, st.ChunksFlushed, float64(st.BytesFlushed)/1e6, st.DupChunks, st.Requeued)
	skipped, kept, evicted := c.store.Cache().Stats()
	fmt.Printf("cache: %d hot skips, %d kept cached, %d evicted cold\n", skipped, kept, evicted)
	fmt.Printf("virtual time: %v\n", c.world.Engine.Now())
}

func (c *ctl) df() {
	cl := c.world.Cluster
	meta := cl.PoolStats(c.store.MetaPool())
	chunk := cl.PoolStats(c.store.ChunkPool())
	fmt.Printf("%-10s %10s %14s %14s %14s\n", "pool", "objects", "logical", "stored-data", "stored-meta")
	fmt.Printf("%-10s %10d %11.2f MB %11.2f MB %11.2f MB\n", meta.Name, meta.Objects,
		float64(meta.LogicalBytes)/1e6, float64(meta.StoredPhysical)/1e6, float64(meta.StoredMetadata)/1e6)
	fmt.Printf("%-10s %10d %11.2f MB %11.2f MB %11.2f MB\n", chunk.Name, chunk.Objects,
		float64(chunk.LogicalBytes)/1e6, float64(chunk.StoredPhysical)/1e6, float64(chunk.StoredMetadata)/1e6)
	total := meta.StoredTotal() + chunk.StoredTotal()
	if cp := c.store.ColdChunkPool(); cp != nil {
		cold := cl.PoolStats(cp)
		fmt.Printf("%-10s %10d %11.2f MB %11.2f MB %11.2f MB\n", cold.Name, cold.Objects,
			float64(cold.LogicalBytes)/1e6, float64(cold.StoredPhysical)/1e6, float64(cold.StoredMetadata)/1e6)
		total += cold.StoredTotal()
	}
	logical := meta.LogicalBytes
	fmt.Printf("raw stored %.2f MB for %.2f MB logical", float64(total)/1e6, float64(logical)/1e6)
	if logical > 0 {
		overhead := c.store.Config().MetaRedundancy.Overhead()
		fmt.Printf(" -> %.1f%% saved vs %gx replication", 100*(1-float64(total)/(overhead*float64(logical))), overhead)
	}
	fmt.Println()
}

// metrics dumps the cluster-wide registry (Prometheus exposition text) plus
// the per-resource queue/utilization table.
func (c *ctl) metrics() {
	fmt.Print(c.world.Cluster.DumpMetrics())
	fmt.Println()
	fmt.Print(dedupstore.FormatUsage(c.world.Cluster.Resources().Snapshot(c.world.Engine.Now())))
}

// qos dumps the per-OSD op scheduler's per-class state: weights, depth
// caps, admission counters and queue pressure, aggregated across every disk
// and NIC scheduler in the cluster.
func (c *ctl) qos() {
	fmt.Printf("%-10s %7s %6s %9s %10s %10s %10s %7s %9s %12s %12s\n",
		"class", "weight", "cap", "limit", "admitted", "queued", "throttled", "inq", "max-queue", "queue-wait", "busy")
	for _, t := range c.world.Cluster.QoS().Totals() {
		limit := "-"
		if t.Limit > 0 {
			limit = t.Limit.Round(time.Microsecond).String()
		}
		fmt.Printf("%-10s %7d %6d %9s %10d %10d %10d %7d %9d %12v %12v\n",
			t.Class, t.Weight, t.MaxDepth, limit, t.Admitted, t.Queued, t.Throttled,
			t.QueueLen, t.MaxQueue, t.QueueWait.Round(time.Microsecond), t.Busy.Round(time.Microsecond))
	}
}

// simStats prints the DES kernel's execution counters and the trace sink's
// sampling state — what running the simulation itself cost, as opposed to
// what the simulated cluster did.
func (c *ctl) simStats() {
	st := c.world.Engine.Stats()
	fmt.Printf("virtual time: %v\n", c.world.Engine.Now())
	fastPct := 0.0
	if st.EventsDispatched > 0 {
		fastPct = 100 * float64(st.FastPath) / float64(st.EventsDispatched)
	}
	fmt.Printf("events: %d scheduled, %d dispatched (%d same-time fast path, %.1f%%)\n",
		st.EventsScheduled, st.EventsDispatched, st.FastPath, fastPct)
	fmt.Printf("queues: event-heap high-water %d, same-time FIFO high-water %d\n",
		st.PeakHeap, st.PeakFIFO)
	fmt.Printf("procs: %d goroutines spawned, %d starts served from the free pool, %d live, %d pooled\n",
		st.ProcsSpawned, st.ProcsReused, st.ProcsLive, st.ProcsPooled)
	sink := c.world.Cluster.Trace()
	fmt.Printf("trace: sampling 1 of every %d spans, %d seen, %d recorded\n",
		sink.Sample(), sink.Seen(), sink.Total())
}

// tenants runs a short multi-tenant demo — a gold interactive tenant, a
// silver steady writer, and a noisy tenant (SLO from -slo) hammering
// low-dup random writes — through the gateway's per-tenant admission, then
// prints the per-tenant accounting table an operator would read to answer
// "who is loading the cluster, and is anyone blowing their neighbors' tail?"
func (c *ctl) tenants(noisySpec string) {
	slo, err := gateway.ParseSLO(noisySpec)
	if err != nil {
		log.Fatalf("dedupctl: -slo %q: %v", noisySpec, err)
	}
	coord := dedupstore.NewTenantCoordinator(c.world.Cluster.Metrics(), 0)
	span := int64(8 << 20)
	type job struct {
		name string
		slo  gateway.SLO
		cfg  workload.FIOConfig
	}
	jobs := []job{
		{name: "interactive", slo: gateway.Gold, cfg: workload.FIOConfig{
			BlockSize: 16 << 10, Span: span, Pattern: workload.RandWrite,
			DedupPct: 50, Threads: 2, IODepth: 2, Seed: 11, Ops: 256,
		}},
		{name: "steady", slo: gateway.Silver, cfg: workload.FIOConfig{
			BlockSize: 64 << 10, Span: span, Pattern: workload.SeqWrite,
			DedupPct: 80, Threads: 4, IODepth: 4, Seed: 12, Ops: 256,
		}},
		{name: "noisy", slo: slo, cfg: workload.FIOConfig{
			BlockSize: 64 << 10, Span: span, Pattern: workload.RandWrite,
			DedupPct: 0, Threads: 8, IODepth: 8, Seed: 13, Ops: 512,
		}},
	}
	devs := make([]*dedupstore.BlockDevice, len(jobs))
	for i, j := range jobs {
		tn, err := coord.Register(j.name, j.slo)
		if err != nil {
			log.Fatal(err)
		}
		devs[i], err = dedupstore.NewTenantBlockDevice("ten."+j.name, span, 1<<20,
			c.store.Client("client."+j.name), tn)
		if err != nil {
			log.Fatal(err)
		}
	}
	c.world.Run(func(p *dedupstore.Proc) {
		for i := range jobs {
			i := i
			p.Go("tenant."+jobs[i].name, func(q *dedupstore.Proc) {
				if res := workload.RunFIO(q, devs[i], jobs[i].cfg); res.Errors > 0 {
					log.Fatalf("tenant %s: %d errors", jobs[i].name, res.Errors)
				}
			})
		}
	})
	fmt.Printf("%-12s %-22s %7s %9s %10s %12s %9s %9s\n",
		"tenant", "slo", "ops", "MB", "throttled", "queue-wait", "mean ms", "p99 ms")
	for _, st := range coord.Stats() {
		fmt.Printf("%-12s %-22s %7d %9.2f %10d %12v %9.2f %9.2f\n",
			st.Name, tenantSLO(st), st.Ops, float64(st.Bytes)/1e6, st.Throttled,
			st.QueueWait.Round(time.Millisecond),
			float64(st.MeanLat)/float64(time.Millisecond),
			float64(st.P99Lat)/float64(time.Millisecond))
	}
}

// tenantSLO renders a tenant's contract compactly for the table.
func tenantSLO(st dedupstore.TenantStats) string {
	s := gateway.SLO{Class: st.Class, Weight: st.Weight, RateBps: st.RateBps,
		Burst: st.Burst, MaxInflight: st.MaxInflight}
	for _, preset := range []gateway.SLO{gateway.Gold, gateway.Silver, gateway.Bronze} {
		if s == preset {
			return s.Class
		}
	}
	return s.String()
}

// index dumps the per-OSD fingerprint index state: live entries, memtable
// and WAL footprint, SSTable bytes and per-level table counts, bloom
// observed vs design false-positive rate, block-cache hit ratio and
// compaction count — the dedupctl qos of the chunk-existence path.
func (c *ctl) index() {
	infos := c.world.Cluster.FPIndexPerOSD()
	if len(infos) == 0 {
		fmt.Println("fingerprint index not enabled (include the index action so the store opens with it)")
		return
	}
	levels := func(s fpindex.Stats) string {
		if len(s.LevelTables) == 0 {
			return "-"
		}
		parts := make([]string, len(s.LevelTables))
		for i, n := range s.LevelTables {
			parts[i] = strconv.Itoa(n)
		}
		return strings.Join(parts, "/")
	}
	fmt.Printf("%-6s %9s %9s %9s %10s %8s %8s %10s %10s %9s %9s\n",
		"osd", "entries", "mem KiB", "wal KiB", "table KiB", "tables", "levels", "obs FP %", "est FP %", "cache %", "compact")
	for _, info := range infos {
		s := info.Stats
		fmt.Printf("osd.%-2d %9d %9d %9d %10d %8d %8s %10.2f %10.2f %9.1f %9d\n",
			info.OSD, s.Entries, s.MemtableBytes>>10, s.WALBytes>>10, s.TableBytes>>10,
			s.Tables, levels(s), 100*s.ObservedFP(), 100*s.EstimatedFP(),
			100*s.CacheHitRatio(), s.Compactions)
	}
	t := c.world.Cluster.FPIndexStats()
	fmt.Printf("%-6s %9d %9d %9d %10d %8d %8s %10.2f %10.2f %9.1f %9d\n",
		"TOTAL", t.Entries, t.MemtableBytes>>10, t.WALBytes>>10, t.TableBytes>>10,
		t.Tables, "-", 100*t.ObservedFP(), 100*t.EstimatedFP(),
		100*t.CacheHitRatio(), t.Compactions)
	fmt.Printf("lookups %d (memtable hits %d), inserts %d, deletes %d, flushes %d, WAL replays %d, lookup/store mismatches %d\n",
		t.Lookups, t.MemHits, t.Inserts, t.Deletes, t.Flushes, t.Recoveries,
		c.world.Cluster.Metrics().Counter("fpindex_lookup_mismatch_total").Value())
}

// tiering exercises the adaptive-redundancy policy daemon over the loaded
// dataset: the namespace cools past the hitset horizon, a small working set
// is re-heated across consecutive periods, and policy passes run to
// convergence. Prints the per-temperature census and the migration totals —
// what an operator would read to answer "where does my data live, and what
// did it cost the cluster to move it there?"
func (c *ctl) tiering() {
	cfg := c.store.Config()
	if !cfg.Tiering.Enabled {
		fmt.Println("tiering not enabled (include the tiering action so the store opens with it)")
		return
	}
	c.world.Run(func(p *dedupstore.Proc) {
		read := func(off, length int64) {
			if _, err := c.dev.ReadAt(p, off, length); err != nil {
				log.Fatal(err)
			}
		}
		// Everything the load wrote is warm right now; let it all cool past
		// the hitset horizon, then run the daemon while re-reading the
		// device's first objects every period — the daemon demotes the cold
		// bulk to EC and recaches the re-heated set.
		p.Sleep(time.Duration(cfg.HitSet.Retain+1) * cfg.HitSet.Period)
		hotSpan := 2 * c.dev.ObjectSize()
		if hotSpan > c.dev.Size() {
			hotSpan = c.dev.Size()
		}
		c.store.StartTieringDaemon()
		for r := 0; r < 5; r++ {
			read(0, hotSpan)
			p.Sleep(cfg.HitSet.Period + cfg.HitSet.Period/10)
		}
		c.store.StopTieringDaemon()
		p.Sleep(2 * cfg.Tiering.Interval) // let the daemon notice and exit
		// One final pass for the census: reads in two consecutive periods
		// grade the working set hot, a single first touch grades the next
		// span warm (and promotes its chunks back out of EC), the untouched
		// bulk stays cold.
		read(0, hotSpan)
		p.Sleep(cfg.HitSet.Period)
		read(0, hotSpan)
		if warmSpan := hotSpan; warmSpan*2 <= c.dev.Size() {
			read(warmSpan, warmSpan)
		}
		if _, err := c.store.TierPass(p); err != nil {
			log.Fatal(err)
		}
	})
	census, at := c.store.TierCensus()
	fmt.Printf("%-5s %8s %12s\n", "tier", "objects", "bytes")
	for t := 2; t >= 0; t-- {
		fmt.Printf("%-5s %8d %9.2f MB\n",
			[3]string{"cold", "warm", "hot"}[t], census.Objects[t], float64(census.Bytes[t])/1e6)
	}
	st := c.store.TierStats()
	fmt.Printf("census at %v after %d pass(es); daemon running=%v, %d migration(s) in flight\n",
		at, st.Passes, c.store.TieringDaemonRunning(), c.store.TierInFlight())
	fmt.Printf("promote: %d recaches (%.2f MB rehydrated), %d chunks EC->replicated\n",
		st.Recaches, float64(st.RecachedBytes)/1e6, st.PromotedChunks)
	fmt.Printf("demote:  %d rededups, %d evicts (%d cached copies dropped), %d chunks replicated->EC\n",
		st.Rededups, st.Evicts, st.EvictedChunks, st.DemotedChunks)
	fmt.Printf("moved %.2f MB between chunk pools; %d raced skips, %d errors\n",
		float64(st.MigratedBytes)/1e6, st.RacedSkips, st.Errors)
}

func (c *ctl) scrub(repair bool) {
	c.world.Run(func(p *dedupstore.Proc) {
		for _, pool := range []*dedupstore.Pool{c.store.MetaPool(), c.store.ChunkPool()} {
			stats := c.world.Cluster.Scrub(p, pool, repair)
			fmt.Printf("pool %s: %d objects, %.1f MB scanned, %d inconsistencies, %d repaired\n",
				pool.Name, stats.Objects, float64(stats.BytesScanned)/1e6, len(stats.Errors), stats.Repaired)
			for i, e := range stats.Errors {
				if i >= 5 {
					fmt.Printf("  ... %d more\n", len(stats.Errors)-5)
					break
				}
				fmt.Printf("  %s\n", e)
			}
		}
	})
}

// corrupt injects bit rot into the first chunk object found (for demos).
func (c *ctl) corrupt() {
	chunkPool := c.store.ChunkPool()
	oids := c.world.Cluster.ListObjects(chunkPool)
	if len(oids) == 0 {
		fmt.Println("no chunk objects to corrupt")
		return
	}
	oid := oids[0]
	for _, osd := range c.world.Cluster.OSDs() {
		st, _ := c.world.Cluster.OSDStore(osd)
		key := store.Key{Pool: chunkPool.ID, OID: oid}
		if st.Exists(key) {
			if err := c.world.Cluster.CorruptForTest(osd, key, 0); err == nil {
				fmt.Printf("flipped a byte of %s on osd.%d\n", oid[:16]+"...", osd)
				return
			}
		}
	}
}

func (c *ctl) gc() {
	c.world.Run(func(p *dedupstore.Proc) {
		stats, err := c.store.GC(p)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("gc: %d chunks scanned, %d refs checked, %d stale, %d chunks deleted (%.2f MB reclaimed)\n",
			stats.ChunksScanned, stats.RefsChecked, stats.StaleRefs, stats.ChunksDeleted, float64(stats.BytesReclaimed)/1e6)
		if stats.IntentsPromoted+stats.IntentsAborted+stats.CountsFixed+stats.RacedSkips+stats.BadRefKeys > 0 {
			fmt.Printf("gc: %d intents promoted, %d aborted, %d counts fixed, %d raced skips, %d bad keys\n",
				stats.IntentsPromoted, stats.IntentsAborted, stats.CountsFixed, stats.RacedSkips, stats.BadRefKeys)
		}
	})
}

func (c *ctl) audit() {
	c.world.Run(func(p *dedupstore.Proc) {
		stats, err := c.store.Audit(p)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("audit: %d objects, %d bindings checked, %d intents promoted, %d refs repaired, %d counts fixed, %d lost chunks\n",
			stats.MetadataObjects, stats.BindingsChecked, stats.IntentsPromoted, stats.RefsRepaired, stats.CountsFixed, stats.LostChunks)
	})
}

func (c *ctl) evict() {
	c.world.Run(func(p *dedupstore.Proc) {
		p.Sleep(10 * time.Second) // let hotness decay
		stats := c.store.Engine().EvictCold(p)
		fmt.Printf("evict: %d objects scanned, %d chunks (%.2f MB) demoted, %d still hot\n",
			stats.ObjectsScanned, stats.ChunksEvicted, float64(stats.BytesEvicted)/1e6, stats.SkippedHot)
	})
}

// chaos crashes one OSD under the loaded store, lets the heartbeat monitor
// detect it, remap and recover, restarts it, and prints the availability
// timeline an operator would reconstruct from cluster logs. Deterministic
// for a given -seed; follow with `verify gc` to audit the aftermath.
func (c *ctl) chaos(seed int64) {
	mon := c.world.Cluster.StartMonitor(dedupstore.MonitorConfig{
		Interval:    250 * time.Millisecond,
		Grace:       time.Second,
		OutAfter:    2500 * time.Millisecond,
		AutoRecover: true,
	})
	inj := dedupstore.NewFaultInjector(c.world.Cluster)
	osds := c.world.Cluster.OSDs()
	target := osds[int(seed)%len(osds)]
	start := c.world.Engine.Now()
	inj.Apply(dedupstore.FaultSchedule{
		{At: 500 * time.Millisecond, Kind: chaos.KindCrashOSD, OSD: target, Duration: 6 * time.Second},
	})
	c.world.Run(func(p *dedupstore.Proc) {
		p.Sleep(7 * time.Second) // past crash + revert
		mon.WaitSettled(p)
	})
	mon.Stop()
	rel := func(at dedupstore.SimTime) time.Duration { return (at - start).Duration() }
	for _, ev := range inj.Events() {
		what := "fault: " + ev.Fault.String()
		if ev.Revert {
			what = "fault reverted: " + ev.Fault.String()
		}
		fmt.Printf("%8v  %s\n", rel(ev.At), what)
	}
	for _, ev := range mon.Events() {
		fmt.Printf("%8v  monitor: %s osd.%d\n", rel(ev.At), ev.Kind, ev.OSD)
	}
	reg := c.world.Cluster.Metrics()
	fmt.Printf("degraded reads %d, degraded writes %d, timeouts %d, recovered %.2f MB\n",
		reg.Counter("rados_degraded_reads_total").Value(),
		reg.Counter("rados_degraded_writes_total").Value(),
		reg.Counter("rados_requests_timed_out_total").Value(),
		float64(c.world.Cluster.RecoveredBytes())/1e6)
}

func (c *ctl) verify() {
	c.world.Run(func(p *dedupstore.Proc) {
		rep, err := c.store.Scrub(p)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("dedup scrub: %d metadata objects, %d chunks, %.1f MB verified, %d issues\n",
			rep.MetadataObjects, rep.ChunkObjects, float64(rep.BytesVerified)/1e6, len(rep.Issues))
		for i, is := range rep.Issues {
			if i >= 5 {
				fmt.Printf("  ... %d more\n", len(rep.Issues)-5)
				break
			}
			fmt.Printf("  %s: %s\n", is.OID, is.Detail)
		}
	})
}
