package dedupstore_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"dedupstore"
)

// TestPublicAPIQuickstart exercises the facade end to end: cluster, store,
// client writes/reads, background dedup, and space accounting.
func TestPublicAPIQuickstart(t *testing.T) {
	world := dedupstore.NewWorld(42)
	cfg := dedupstore.DefaultConfig()
	cfg.Rate.Enabled = false
	cfg.HitSet.HitCount = 1000
	store, err := dedupstore.OpenStore(world.Cluster, cfg)
	if err != nil {
		t.Fatal(err)
	}
	store.StartEngine()
	client := store.Client("test")

	golden := make([]byte, 128<<10)
	rand.New(rand.NewSource(1)).Read(golden)
	world.Run(func(p *dedupstore.Proc) {
		for i := 0; i < 5; i++ {
			if err := client.Write(p, fmt.Sprintf("obj-%d", i), 0, golden); err != nil {
				t.Fatal(err)
			}
		}
	})
	world.Run(func(p *dedupstore.Proc) { store.Engine().DrainAndWait(p) })

	chunk := world.Cluster.PoolStats(store.ChunkPool())
	if chunk.LogicalBytes != int64(len(golden)) {
		t.Fatalf("chunk pool holds %d bytes, want %d (identical objects must dedup)", chunk.LogicalBytes, len(golden))
	}
	world.Run(func(p *dedupstore.Proc) {
		got, err := client.Read(p, "obj-2", 0, -1)
		if err != nil || !bytes.Equal(got, golden) {
			t.Fatalf("read back: %v", err)
		}
	})
}

// TestPublicAPIBlockDevice exercises the RBD-style device over the facade.
func TestPublicAPIBlockDevice(t *testing.T) {
	world := dedupstore.NewWorld(7)
	cfg := dedupstore.DefaultConfig()
	cfg.Rate.Enabled = false
	store, err := dedupstore.OpenStore(world.Cluster, cfg)
	if err != nil {
		t.Fatal(err)
	}
	dev, err := dedupstore.NewBlockDevice("vol", 4<<20, 1<<20, store.Client("bd"))
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 300<<10)
	rand.New(rand.NewSource(2)).Read(data)
	world.Run(func(p *dedupstore.Proc) {
		if err := dev.WriteAt(p, 900<<10, data); err != nil {
			t.Fatal(err)
		}
		got, err := dev.ReadAt(p, 900<<10, int64(len(data)))
		if err != nil || !bytes.Equal(got, data) {
			t.Fatalf("device round trip: %v", err)
		}
	})
}

// TestWorldSizedAndRedundancyHelpers covers the remaining facade surface.
func TestWorldSizedAndRedundancyHelpers(t *testing.T) {
	world := dedupstore.NewWorldSized(1, 2, 3)
	if got := len(world.Cluster.OSDs()); got != 6 {
		t.Fatalf("OSDs = %d, want 6", got)
	}
	if dedupstore.ReplicatedN(3).Width() != 3 {
		t.Fatal("ReplicatedN width")
	}
	if dedupstore.ErasureKM(4, 2).Width() != 6 {
		t.Fatal("ErasureKM width")
	}
	cfg := dedupstore.DefaultConfig()
	cfg.MetaRedundancy = dedupstore.ReplicatedN(2)
	cfg.ChunkRedundancy = dedupstore.ErasureKM(2, 1)
	store, err := dedupstore.OpenStore(world.Cluster, cfg)
	if err != nil {
		t.Fatal(err)
	}
	world.Run(func(p *dedupstore.Proc) {
		cl := store.Client("x")
		if err := cl.Write(p, "o", 0, []byte("mixed redundancy pools")); err != nil {
			t.Fatal(err)
		}
	})
}
