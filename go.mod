module dedupstore

go 1.22
